#![forbid(unsafe_code)]
//! `ftpm` — command-line frontend for the FTPMfTS pipeline.
//!
//! ```text
//! ftpm mine  --input data.csv --sigma 0.5 --delta 0.5 --window 360
//! ftpm mine  --demo nist --scale 0.02 --sigma 0.4 --delta 0.4
//! ftpm mine  --demo nist --scale 0.02 --sigma 0.4 --threads 4 \
//!            --output patterns.jsonl --stream
//! ftpm mine  --demo city --approx-density 0.6 --sigma 0.3 --delta 0.3
//! ftpm mine  --demo energy --approx-density 0.8 --shards 4 --threads 4 \
//!            --stream                     # A-HTPGM, sharded + exchange
//! ftpm mine  --demo nist --sort support --top 20
//! ftpm mine  --demo nist --scale 0.01 --boundary true-extent --t-max 180 \
//!            --shards 4 --shard-by time --json            # candidate exchange
//! ftpm mine  --demo nist --scale 0.01 --boundary true-extent --t-max 180 \
//!            --shards 4 --no-exchange                     # support-complete
//! ftpm graph --demo nist --scale 0.02 --mu 0.4
//! ```
//!
//! CSV input: first column is the timestamp (integer ticks at a constant
//! step), remaining columns are numeric variables. Binary symbolization
//! (`--threshold`, default 0.05) is applied unless `--states N` asks for
//! N quantile states.
//!
//! Mining defaults to every available core (`--threads`); with
//! `--stream` the patterns are written to `--output` (or, without one,
//! as CSV to stdout) as they are mined, never materializing the full
//! pattern set in memory.
//!
//! Every flag selects one axis of the same plan: `--mu` /
//! `--approx-density` (A-HTPGM), `--threads`, `--shards`,
//! `--exchange`/`--no-exchange` and `--stream` compose freely, and every
//! composition yields the same pattern set as its single-threaded,
//! unsharded counterpart.

use std::io::{BufWriter, Write as _};
use std::process::ExitCode;

use ftpm::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("mine") => run_mine(&args[1..]),
        Some("graph") => run_graph(&args[1..]),
        Some("lint") => run_lint(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_help();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command {other:?}; try `ftpm --help`");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "ftpm — Frequent Temporal Pattern Mining from Time Series

USAGE:
  ftpm mine  [--input FILE.csv | --demo nist|energy|ukdale|dataport|city]
             [--sigma F] [--delta F] [--window MIN] [--overlap MIN]
             [--boundary clip|true-extent|discard] [--t-max MIN]
             [--threshold F | --states N] [--scale F]
             [--mu F | --approx-density F] [--max-events N]
             [--threads N] [--shards K] [--shard-by time]
             [--exchange | --no-exchange]
             [--output FILE.{{csv,jsonl}}] [--stream]
             [--sort support|confidence] [--top N] [--json]
  ftpm graph [--input FILE.csv | --demo ...] [--mu F] [--scale F]
  ftpm lint  [--root DIR] [--json FILE] [--strict-allows]

OPTIONS:
  --input FILE       CSV with a time column followed by numeric variables
  --demo NAME        use a built-in synthetic dataset instead of a file
  --scale F          demo dataset scale in (0,1]          [default 0.02]
  --sigma F          support threshold in (0,1]           [default 0.5]
  --delta F          confidence threshold in (0,1]        [default 0.5]
  --window MIN       sequence window length in ticks      [default 360]
  --overlap MIN      window overlap t_ov in ticks         [default 0]
  --boundary POLICY  treatment of window-boundary-clipped instances:
                     clip (historical), true-extent (relations and t-max
                     on the real run extents), discard (drop clipped
                     instances)                           [default clip]
  --t-max MIN        maximal pattern duration t_max in ticks
                     [default: unconstrained]
  --threshold F      On/Off symbolization threshold       [default 0.05]
  --states N         use N quantile states instead of On/Off
  --mu F             A-HTPGM with explicit NMI threshold; composes with
                     --threads/--shards/--exchange/--stream — same
                     pattern set on every composition
  --approx-density F A-HTPGM with correlation-graph density target
                     (mutually exclusive with --mu)
  --max-events N     cap pattern length                   [default 5]
  --threads N        worker threads                   [default: all cores]
  --shards K         shard-by-time-range mining: cut the data into K
                     time-range shards overlapping by t_max, mine each
                     independently, merge losslessly (output equals the
                     unsharded run, exact or approximate)  [default 1]
  --shard-by KEY     sharding axis; only \"time\" is implemented
  --exchange         two-phase candidate exchange (default with --shards):
                     shards run concurrently, propose level-k candidates
                     with owned supports, and the global sigma/delta gate
                     prunes losers before the next level — same output,
                     strictly fewer candidates per shard
  --no-exchange      keep the support-complete path (no per-shard pruning,
                     sequential shards) for cross-validation; keep
                     --max-events low on wide alphabets
  --output FILE      export patterns (.csv or .jsonl, by extension)
  --stream           stream patterns straight to --output while mining —
                     or, without --output, as CSV to stdout (the summary
                     then goes to stderr). Constant memory; no sort/top
  --sort KEY         order printed/exported patterns: support|confidence
  --top N            keep only the N best patterns (sorts by support
                     unless --sort says otherwise)
  --json             machine-readable summary output

LINT:
  ftpm lint runs the ftpm-analyzer workspace invariant linter: per-file
  rules R1-R6 (fused and_count usage, panic-free library crates,
  exhaustive BoundaryPolicy matches, unsafe confinement, checked sink
  writes, correlation-filter confinement) plus whole-program rules
  R7-R10 over the workspace item graph (hot-path purity, facade
  coverage, sink-seam discipline, concurrency confinement). Stale
  `// lint: allow(..)` markers are warnings (--strict-allows makes them
  errors). --root overrides workspace discovery; --json writes a
  machine-readable report. Exit codes: 0 clean, 2 violations found,
  1 analyzer internal error."
    );
}

/// `ftpm lint` — the workspace invariant linter, also available as
/// `cargo run -p ftpm-analyzer`. Exit codes: 0 clean, 2 violations
/// found, 1 analyzer internal error (unreadable files, bad flags) — so
/// CI can tell "the code is wrong" from "the linter is wrong".
fn run_lint(args: &[String]) -> ExitCode {
    let mut root: Option<std::path::PathBuf> = None;
    let mut json: Option<std::path::PathBuf> = None;
    let mut opts = ftpm_analyzer::AnalyzeOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => root = Some(v.into()),
                None => {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(1);
                }
            },
            "--json" => match it.next() {
                Some(v) => json = Some(v.into()),
                None => {
                    eprintln!("--json needs a file path");
                    return ExitCode::from(1);
                }
            },
            "--strict-allows" => opts.strict_allows = true,
            other => {
                eprintln!("unknown flag {other:?}; try `ftpm --help`");
                return ExitCode::from(1);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| ".".into());
            match ftpm_analyzer::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("no workspace root found above {}; pass --root", cwd.display());
                    return ExitCode::from(1);
                }
            }
        }
    };
    let report = ftpm_analyzer::analyze_workspace_with(&root, &opts);
    for v in &report.violations {
        eprintln!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
    }
    for w in &report.warnings {
        eprintln!("{}:{}: warning [{}] {}", w.file, w.line, w.rule, w.message);
    }
    for e in &report.internal_errors {
        eprintln!("internal error: {e}");
    }
    eprintln!(
        "ftpm-analyzer: {} files scanned, {} violations, {} warnings, \
         {} internal errors, {} allow markers",
        report.files_scanned,
        report.violations.len(),
        report.warnings.len(),
        report.internal_errors.len(),
        report.allows.len()
    );
    if let Some(path) = json {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("cannot create {}: {e}", parent.display());
                    return ExitCode::from(1);
                }
            }
        }
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::from(1);
        }
    }
    if !report.internal_errors.is_empty() {
        ExitCode::from(1)
    } else if !report.violations.is_empty() {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

struct Options {
    input: Option<String>,
    demo: Option<String>,
    scale: f64,
    sigma: f64,
    delta: f64,
    window: i64,
    overlap: i64,
    /// The validated split geometry (`--window`/`--overlap`), built once
    /// at the end of `parse` — the single place the values are checked.
    split: SplitConfig,
    boundary: BoundaryPolicy,
    t_max: Option<i64>,
    threshold: f64,
    states: Option<usize>,
    mu: Option<f64>,
    density: Option<f64>,
    max_events: usize,
    threads: usize,
    shards: usize,
    /// `--exchange` / `--no-exchange` as given; `None` means "default":
    /// candidate exchange whenever `--shards` > 1.
    exchange: Option<bool>,
    output: Option<String>,
    stream: bool,
    sort: Option<PatternSort>,
    top: Option<usize>,
    json: bool,
}

/// Worker threads to use when `--threads` is not given: every core the
/// OS reports.
fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opt = Options {
        input: None,
        demo: None,
        scale: 0.02,
        sigma: 0.5,
        delta: 0.5,
        window: 360,
        overlap: 0,
        split: SplitConfig::new(360, 0),
        boundary: BoundaryPolicy::Clip,
        t_max: None,
        threshold: 0.05,
        states: None,
        mu: None,
        density: None,
        max_events: 5,
        threads: default_threads(),
        shards: 1,
        exchange: None,
        output: None,
        stream: false,
        sort: None,
        top: None,
        json: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--input" => opt.input = Some(value("--input")?),
            "--demo" => opt.demo = Some(value("--demo")?),
            "--scale" => opt.scale = num(&value("--scale")?)?,
            "--sigma" => opt.sigma = num(&value("--sigma")?)?,
            "--delta" => opt.delta = num(&value("--delta")?)?,
            "--window" => opt.window = num(&value("--window")?)? as i64,
            "--overlap" => opt.overlap = num(&value("--overlap")?)? as i64,
            "--boundary" => {
                opt.boundary = value("--boundary")?
                    .parse()
                    .map_err(|e| format!("--boundary: {e}"))?;
            }
            "--t-max" => {
                let t_max = num(&value("--t-max")?)? as i64;
                if t_max <= 0 {
                    return Err(format!("--t-max must be positive, got {t_max}"));
                }
                opt.t_max = Some(t_max);
            }
            "--threshold" => opt.threshold = num(&value("--threshold")?)?,
            "--states" => opt.states = Some(num(&value("--states")?)? as usize),
            "--mu" => opt.mu = Some(num(&value("--mu")?)?),
            "--approx-density" => opt.density = Some(num(&value("--approx-density")?)?),
            "--max-events" => opt.max_events = num(&value("--max-events")?)? as usize,
            "--threads" => {
                opt.threads = num(&value("--threads")?)? as usize;
                if opt.threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
            }
            "--shards" => {
                opt.shards = num(&value("--shards")?)? as usize;
                if opt.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--exchange" => opt.exchange = Some(true),
            "--no-exchange" => opt.exchange = Some(false),
            "--shard-by" => {
                let axis = value("--shard-by")?;
                if axis != "time" {
                    return Err(format!(
                        "--shard-by {axis:?}: only \"time\" is implemented \
                         (variable-group sharding is a ROADMAP item)"
                    ));
                }
            }
            "--output" => opt.output = Some(value("--output")?),
            "--stream" => opt.stream = true,
            "--sort" => opt.sort = Some(value("--sort")?.parse()?),
            "--top" => opt.top = Some(num(&value("--top")?)? as usize),
            "--json" => opt.json = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if opt.input.is_none() && opt.demo.is_none() {
        return Err("need --input FILE or --demo NAME".into());
    }
    // Validate the split geometry here instead of letting
    // `SplitConfig::new` assert deep inside the pipeline: a bad value
    // should be a usage error naming the flags, not a panic backtrace.
    opt.split = SplitConfig::try_new(opt.window, opt.overlap)
        .map_err(|e| format!("--window/--overlap: {e}"))?;
    if !(opt.sigma > 0.0 && opt.sigma <= 1.0) {
        return Err(format!("--sigma must be in (0, 1], got {}", opt.sigma));
    }
    if !(opt.delta > 0.0 && opt.delta <= 1.0) {
        return Err(format!("--delta must be in (0, 1], got {}", opt.delta));
    }
    if opt.stream && (opt.sort.is_some() || opt.top.is_some()) {
        return Err("--stream cannot sort or truncate; drop --sort/--top".into());
    }
    // Both flags parameterize the same correlation graph — one by the NMI
    // threshold directly, one by the edge density it should achieve — so
    // giving both is a contradiction, not a composition.
    if opt.mu.is_some() && opt.density.is_some() {
        return Err(
            "--mu and --approx-density both choose the correlation graph; pick one".into(),
        );
    }
    // A silent no-op would read as "exchange ran": candidate exchange is
    // a property of sharded runs, so asking for it without shards is a
    // usage error, not something to ignore.
    if opt.exchange == Some(true) && opt.shards <= 1 {
        return Err(
            "--exchange needs --shards K (K > 1): candidate exchange coordinates \
             per-shard mining rounds, so there is nothing to exchange unsharded"
                .into(),
        );
    }
    // The shard slices overlap by t_ov = t_max; with t_max unconstrained
    // every slice degrades to the whole series. Still lossless — each
    // shard owns its own windows, only the slices are redundant — so it
    // is a performance note, not a usage error.
    if opt.shards > 1 && opt.t_max.is_none() {
        eprintln!(
            "note: --shards without --t-max makes every shard slice span the whole \
             series (the overlap is t_ov = t_max); output is unchanged but the slices \
             are redundant — pass --t-max to bound them"
        );
    }
    if let Some(path) = &opt.output {
        output_format(path)?;
    }
    // "--top N" promises the N *best* patterns; discovery order is
    // nondeterministic under --threads, so truncation needs a sort.
    if opt.top.is_some() && opt.sort.is_none() {
        opt.sort = Some(PatternSort::Support);
    }
    Ok(opt)
}

fn num(s: &str) -> Result<f64, String> {
    s.parse::<f64>().map_err(|e| format!("bad number {s:?}: {e}"))
}

/// Export format, decided by the `--output` extension.
#[derive(Clone, Copy, PartialEq)]
enum OutputFormat {
    Csv,
    Jsonl,
}

fn output_format(path: &str) -> Result<OutputFormat, String> {
    if path.ends_with(".csv") {
        Ok(OutputFormat::Csv)
    } else if path.ends_with(".jsonl") || path.ends_with(".ndjson") {
        Ok(OutputFormat::Jsonl)
    } else {
        Err(format!(
            "--output {path:?}: unsupported extension (use .csv or .jsonl)"
        ))
    }
}

/// Loads the symbolic + sequence databases from the chosen source, plus
/// the split geometry that produced the sequences (the demos carry their
/// own; CSV input uses `--window`/`--overlap`) — sharded runs re-split
/// per shard with exactly this geometry.
fn load(opt: &Options) -> Result<(SymbolicDatabase, SequenceDatabase, SplitConfig), String> {
    if let Some(demo) = &opt.demo {
        let d = match demo.as_str() {
            // "energy" is the paper's NIST smart-home energy dataset —
            // an alias so the A-HTPGM examples read like the evaluation.
            "nist" | "energy" => nist_like(opt.scale),
            "ukdale" => ukdale_like(opt.scale),
            "dataport" => dataport_like(opt.scale),
            "city" => smartcity_like(opt.scale),
            other => return Err(format!("unknown demo dataset {other:?}")),
        };
        return Ok((d.syb, d.seq, d.split));
    }
    let path = opt.input.as_ref().expect("checked in parse");
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let series = parse_csv(&text)?;
    let mut syb = SymbolicDatabase::new(series[0].start(), series[0].step(), series[0].len());
    for ts in &series {
        match opt.states {
            None => {
                syb.add_time_series(ts, &ThresholdSymbolizer::new(opt.threshold));
            }
            Some(n) => {
                let labels: Vec<String> = (0..n).map(|i| format!("S{i}")).collect();
                let q = QuantileSymbolizer::from_data(labels, ts.values());
                syb.add_time_series(ts, &q);
            }
        }
    }
    let split = opt.split;
    let effective = split.effective(syb.step());
    if effective != split {
        eprintln!(
            "note: split rounded to sampling steps of {}: requested {split}, effective {effective}",
            syb.step(),
        );
    }
    let seq = to_sequence_database(&syb, split);
    Ok((syb, seq, split))
}

/// Opens `path`, builds the sink matching its extension (labels rendered
/// through `registry` — for sharded runs that is the plan's master
/// registry, not the unsharded database's), hands it to `feed`, then
/// finishes the sink. Without a path the patterns go to stdout as CSV —
/// the `--stream`-without-`--output` pipe mode. Returns the number of
/// pattern rows/lines written. The single place the CSV/JSONL dispatch
/// lives; I/O failures (full disk, closed pipe) surface as errors, never
/// panics.
fn write_patterns(
    path: Option<&str>,
    registry: &EventRegistry,
    feed: &mut dyn FnMut(&mut (dyn PatternSink + Send)),
) -> Result<u64, String> {
    let Some(path) = path else {
        // `Stdout` (not `StdoutLock`) so the sink stays `Send` for the
        // parallel miners; the handle locks per write.
        let out = BufWriter::new(std::io::stdout());
        let mut sink = CsvSink::new(out, registry);
        feed(&mut sink);
        let (written, finished) = (sink.written(), sink.finish());
        finished.map_err(|e| format!("stdout: {e}"))?;
        return Ok(written);
    };
    let format = output_format(path).expect("validated in parse");
    let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
    let out = BufWriter::new(file);
    let (written, finished) = match format {
        OutputFormat::Csv => {
            let mut sink = CsvSink::new(out, registry);
            feed(&mut sink);
            (sink.written(), sink.finish())
        }
        OutputFormat::Jsonl => {
            let mut sink = JsonlSink::new(out, registry);
            feed(&mut sink);
            (sink.written(), sink.finish())
        }
    };
    finished.map_err(|e| format!("{path}: {e}"))?;
    Ok(written)
}

/// The one mining plan: every `ftpm mine` run — exact or approximate,
/// sequential or parallel, unsharded, sharded support-complete or
/// sharded candidate-exchange, collecting or streaming — is this single
/// dispatch over (shard plan, correlation graph, exchange, threads)
/// feeding one sink. A-HTPGM is not a separate code path: `graph` gates
/// the same miners the exact rows use, so every composition yields the
/// identical pattern set.
fn run_plan(
    seq: &SequenceDatabase,
    cfg: &MinerConfig,
    threads: usize,
    shard_plan: Option<&ShardPlan>,
    exchange: bool,
    graph: Option<&CorrelationGraph>,
    sink: &mut (dyn PatternSink + Send),
) -> (MiningStats, Vec<ShardReport>) {
    match (shard_plan, graph) {
        (Some(plan), Some(g)) if exchange => {
            plan.mine_approximate_exchange_into(g, cfg, threads, sink)
        }
        (Some(plan), Some(g)) => plan.mine_approximate_into(g, cfg, threads, sink),
        (Some(plan), None) if exchange => plan.mine_exchange_into(cfg, threads, sink),
        (Some(plan), None) => plan.mine_into_reported(cfg, threads, sink),
        (None, Some(g)) => (
            mine_approximate_graph_with_sink(seq, g, cfg, threads, sink),
            Vec::new(),
        ),
        (None, None) if threads > 1 => {
            (mine_exact_parallel_with_sink(seq, cfg, threads, sink), Vec::new())
        }
        (None, None) => (mine_exact_with_sink(seq, cfg, sink), Vec::new()),
    }
}

/// Streams the mining run straight into `--output` (stdout CSV without
/// one); returns the number of patterns written, the run statistics and
/// (for sharded runs) the per-shard reports. With a shard plan, each
/// shard's miner streams through the deduplicating merge into the same
/// writer sink — the full pattern set is still never materialized.
fn mine_streaming(
    seq: &SequenceDatabase,
    cfg: &MinerConfig,
    threads: usize,
    shard_plan: Option<&ShardPlan>,
    exchange: bool,
    graph: Option<&CorrelationGraph>,
    path: Option<&str>,
) -> Result<(u64, MiningStats, Vec<ShardReport>), String> {
    let mut stats = MiningStats::default();
    let mut reports = Vec::new();
    let registry = shard_plan.map_or(seq.registry(), |p| p.registry());
    let written = write_patterns(path, registry, &mut |sink| {
        (stats, reports) = run_plan(seq, cfg, threads, shard_plan, exchange, graph, sink);
    })?;
    Ok((written, stats, reports))
}

/// Renders the per-shard observability rows for `--json`: owned window
/// counts, candidates proposed, candidates pruned by the global exchange
/// gate, and per-shard wall time.
fn shard_reports_json(reports: &[ShardReport]) -> serde_json::Value {
    serde_json::Value::from(
        reports
            .iter()
            .map(|r| {
                serde_json::json!({
                    "shard": r.shard,
                    "windows_owned": r.windows_owned,
                    "candidates_proposed": r.candidates_proposed,
                    "candidates_pruned": r.candidates_pruned,
                    "wall_ms": r.wall.as_millis() as u64,
                })
            })
            .collect::<Vec<_>>(),
    )
}

/// Human-readable counterpart of [`shard_reports_json`], one line per
/// shard.
fn write_shard_reports(
    out: &mut impl std::io::Write,
    reports: &[ShardReport],
) -> Result<(), String> {
    for r in reports {
        writeln!(
            out,
            "  shard {}: {} windows owned, {} candidates proposed, {} pruned by the \
             global gate, {:.1?}",
            r.shard, r.windows_owned, r.candidates_proposed, r.candidates_pruned, r.wall,
        )
        .map_err(|e| format!("stdout: {e}"))?;
    }
    Ok(())
}

/// Writes a fully-mined result through the same sink machinery as the
/// streaming path, *consuming* it: the result is replayed by moving each
/// pattern into the sink ([`MiningResult::drain_into`]), so the export
/// allocates nothing per pattern. Runs after the summary — the export is
/// the result's last reader.
fn export_whole_result(
    result: MiningResult,
    registry: &EventRegistry,
    path: &str,
) -> Result<u64, String> {
    let mut moved = Some(result);
    write_patterns(Some(path), registry, &mut |sink| {
        if let Some(r) = moved.take() {
            r.drain_into(sink);
        }
    })
}

/// Writes a sorted/truncated selection as one synthetic node per pattern
/// (the reordering makes a graph replay impossible, so this path clones
/// the selected patterns).
fn export_selection(
    selection: &[&FrequentPattern],
    registry: &EventRegistry,
    path: &str,
) -> Result<u64, String> {
    write_patterns(Some(path), registry, &mut |sink| {
        sink.begin(&[]);
        for fp in selection {
            sink.node(
                fp.pattern.events().to_vec(),
                fp.support,
                fp.pattern.len(),
                vec![(*fp).clone()],
            );
        }
    })
}

fn run_mine(args: &[String]) -> ExitCode {
    match try_mine(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Serializes the JSON summary — a full disk or closed pipe is a
/// reportable I/O error (nonzero exit), not a panic. `to_stderr` routes
/// the summary away from stdout when the pattern stream owns it
/// (`--stream` without `--output`).
fn print_json(payload: &serde_json::Value, to_stderr: bool) -> Result<(), String> {
    let text = serde_json::to_string_pretty(payload)
        .map_err(|e| format!("serializing JSON summary: {e}"))?;
    if to_stderr {
        let stderr = std::io::stderr();
        writeln!(stderr.lock(), "{text}").map_err(|e| format!("stderr: {e}"))
    } else {
        let stdout = std::io::stdout();
        writeln!(stdout.lock(), "{text}").map_err(|e| format!("stdout: {e}"))
    }
}

fn try_mine(args: &[String]) -> Result<(), String> {
    let opt = parse(args)?;
    let (syb, seq, split) = load(&opt)?;
    let mut relation = RelationConfig::default().with_boundary(opt.boundary);
    if let Some(t_max) = opt.t_max {
        relation = relation.with_t_max(t_max);
    }
    let cfg = MinerConfig::new(opt.sigma, opt.delta)
        .with_max_events(opt.max_events.max(2))
        .with_relation(relation);
    let threads = opt.threads;
    // One correlation graph per run, built once on the full symbolic
    // database: --mu sets the NMI threshold directly, --approx-density
    // derives it from a target edge density (Def 5.6). Every execution
    // path below — unsharded, sharded, exchange, streaming — borrows
    // this one graph, so shards can never disagree about the gate.
    let graph = match (opt.mu, opt.density) {
        (Some(mu), _) => Some(CorrelationGraph::build(&syb, mu)),
        (None, Some(d)) => Some(CorrelationGraph::build_with_density(&syb, d)),
        (None, None) => None,
    };
    // Shard-by-time-range plan: slices overlap by t_max so the merged
    // output equals the unsharded run (lossless under every policy).
    let shard_plan = if opt.shards > 1 {
        Some(
            ShardPlanner::new(opt.shards)
                .plan(&syb, split, cfg.relation.t_max)
                .map_err(|e| format!("--shards: {e}"))?,
        )
    } else {
        None
    };
    let shards = shard_plan.as_ref().map_or(1, |p| p.shards().len());
    // Candidate exchange is the default sharded executor; --no-exchange
    // keeps the support-complete PR 4 path for cross-validation.
    let exchange = shard_plan.is_some() && opt.exchange.unwrap_or(true);
    let label = {
        let core = match (&graph, opt.mu, opt.density) {
            (Some(_), Some(mu), _) => format!("A-HTPGM(mu={mu})"),
            (Some(g), None, Some(d)) => format!("A-HTPGM(density={d}, mu={:.3})", g.mu()),
            _ => "E-HTPGM".to_owned(),
        };
        match &shard_plan {
            Some(plan) => format!(
                "{core}[{} shards{}]",
                plan.shards().len(),
                if exchange { ", exchange" } else { "" }
            ),
            None => core,
        }
    };

    let started = std::time::Instant::now();
    if opt.stream {
        let path = opt.output.as_deref();
        let (written, stats, reports) = mine_streaming(
            &seq,
            &cfg,
            threads,
            shard_plan.as_ref(),
            exchange,
            graph.as_ref(),
            path,
        )?;
        let elapsed = started.elapsed();
        // Streaming to stdout hands the pattern CSV the stream; the
        // run summary moves to stderr so the output stays parseable.
        let to_stderr = path.is_none();
        if opt.json {
            let mut payload = serde_json::json!({
                "miner": label,
                "sequences": seq.len(),
                "distinct_events": seq.registry().len(),
                "threads": threads,
                "shards": shards,
                "exchange": exchange,
                "boundary": opt.boundary.as_str(),
                "clipped_instances": stats.clipped_instances,
                "discarded_instances": stats.discarded_instances,
                "elapsed_ms": elapsed.as_millis() as u64,
                "pattern_count": written,
                "output": path.unwrap_or("-"),
                "streamed": true,
            });
            if let serde_json::Value::Object(entries) = &mut payload {
                if let Some(g) = &graph {
                    entries.push(("mu".to_string(), serde_json::Value::from(g.mu())));
                }
                if !reports.is_empty() {
                    entries.push(("shard_reports".to_string(), shard_reports_json(&reports)));
                }
            }
            print_json(&payload, to_stderr)?;
        } else {
            let stdout = std::io::stdout();
            let stderr = std::io::stderr();
            let mut out: Box<dyn std::io::Write> = if to_stderr {
                Box::new(stderr.lock())
            } else {
                Box::new(stdout.lock())
            };
            writeln!(
                out,
                "{label}: {} sequences, {} distinct events ({} boundary-clipped \
                 instances, boundary={}), {written} patterns streamed to {} \
                 in {elapsed:.1?} ({threads} threads)",
                seq.len(),
                seq.registry().len(),
                stats.clipped_instances,
                opt.boundary,
                path.unwrap_or("stdout"),
            )
            .map_err(|e| format!("summary: {e}"))?;
            write_shard_reports(&mut out, &reports)?;
        }
        return Ok(());
    }

    let (result, shard_reports) = {
        let mut sink = CollectSink::new();
        let (stats, reports) = run_plan(
            &seq,
            &cfg,
            threads,
            shard_plan.as_ref(),
            exchange,
            graph.as_ref(),
            &mut sink,
        );
        (sink.into_result(stats), reports)
    };
    let elapsed = started.elapsed();
    // Sharded results are expressed in the plan's master registry; shard
    // slices intern events in their own orders, so the unsharded
    // database's ids do not apply.
    let registry = shard_plan.as_ref().map_or(seq.registry(), |p| p.registry());
    let selection = rank_patterns(&result, opt.sort, opt.top);
    // The export runs *after* the summary so the straight-replay case can
    // consume the result and move every pattern into the writer sink.
    let full_export = opt.sort.is_none() && selection.len() == result.len();

    if opt.json {
        let mut payload = serde_json::json!({
            "miner": label,
            "sequences": seq.len(),
            "distinct_events": seq.registry().len(),
            "threads": threads,
            "shards": shards,
            "exchange": exchange,
            "boundary": opt.boundary.as_str(),
            "clipped_instances": result.stats.clipped_instances,
            "discarded_instances": result.stats.discarded_instances,
            "elapsed_ms": elapsed.as_millis() as u64,
            "pattern_count": result.len(),
            "patterns": selection.iter().map(|p| serde_json::json!({
                "pattern": p.pattern.display(registry).to_string(),
                "support": p.support,
                "rel_support": p.rel_support,
                "confidence": p.confidence,
                "clipped_occurrences": p.clipped_occurrences,
            })).collect::<Vec<_>>(),
        });
        if let serde_json::Value::Object(entries) = &mut payload {
            if let Some(g) = &graph {
                entries.push(("mu".to_string(), serde_json::Value::from(g.mu())));
            }
            if !shard_reports.is_empty() {
                entries.push((
                    "shard_reports".to_string(),
                    shard_reports_json(&shard_reports),
                ));
            }
            if let Some(path) = &opt.output {
                entries.push(("output".to_string(), serde_json::Value::from(path.as_str())));
            }
        }
        print_json(&payload, false)?;
    } else {
        let shown = if selection.len() < result.len() {
            format!(" (showing {})", selection.len())
        } else {
            String::new()
        };
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        let io_err = |e: std::io::Error| format!("stdout: {e}");
        writeln!(
            out,
            "{label}: {} sequences, {} distinct events, {} patterns{shown} in {elapsed:.1?} \
             ({threads} threads)",
            seq.len(),
            seq.registry().len(),
            result.len(),
        )
        .map_err(io_err)?;
        if opt.boundary != BoundaryPolicy::Clip || result.stats.clipped_instances > 0 {
            writeln!(
                out,
                "boundary={}: {} boundary-clipped instances, {} discarded",
                opt.boundary, result.stats.clipped_instances, result.stats.discarded_instances,
            )
            .map_err(io_err)?;
        }
        write_shard_reports(&mut out, &shard_reports)?;
        for fp in &selection {
            writeln!(
                out,
                "{}  [supp={} ({:.0}%), conf={:.0}%]",
                fp.pattern.display(registry),
                fp.support,
                fp.rel_support * 100.0,
                fp.confidence * 100.0,
            )
            .map_err(|e| format!("stdout: {e}"))?;
        }
    }

    if let Some(path) = &opt.output {
        let written = if full_export {
            drop(selection);
            export_whole_result(result, registry, path)?
        } else {
            export_selection(&selection, registry, path)?
        };
        if !opt.json {
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            writeln!(out, "wrote {written} patterns to {path}")
                .map_err(|e| format!("stdout: {e}"))?;
        }
    }
    Ok(())
}

fn run_graph(args: &[String]) -> ExitCode {
    let opt = match parse(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (syb, _, _) = match load(&opt) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mu = opt.mu.unwrap_or_else(|| mu_for_density(&syb, 0.4));
    let graph = CorrelationGraph::build(&syb, mu);
    println!(
        "correlation graph: {} vertices, {} edges, density {:.2} (mu = {mu:.3})",
        graph.n_vertices(),
        graph.n_edges(),
        graph.density(),
    );
    for (i, a) in syb.iter() {
        for (j, b) in syb.iter() {
            if i < j && graph.has_edge(i, j) {
                println!(
                    "  {} -- {}  (NMI {:.2}/{:.2})",
                    a.name(),
                    b.name(),
                    graph.nmi(i, j),
                    graph.nmi(j, i),
                );
            }
        }
    }
    ExitCode::SUCCESS
}
