//! `ftpm` — command-line frontend for the FTPMfTS pipeline.
//!
//! ```text
//! ftpm mine  --input data.csv --sigma 0.5 --delta 0.5 --window 360
//! ftpm mine  --demo nist --scale 0.02 --sigma 0.4 --delta 0.4
//! ftpm mine  --demo city --approx-density 0.6 --sigma 0.3 --delta 0.3
//! ftpm graph --demo nist --scale 0.02 --mu 0.4
//! ```
//!
//! CSV input: first column is the timestamp (integer ticks at a constant
//! step), remaining columns are numeric variables. Binary symbolization
//! (`--threshold`, default 0.05) is applied unless `--states N` asks for
//! N quantile states.

use std::process::ExitCode;

use ftpm::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("mine") => run_mine(&args[1..]),
        Some("graph") => run_graph(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_help();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command {other:?}; try `ftpm --help`");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "ftpm — Frequent Temporal Pattern Mining from Time Series

USAGE:
  ftpm mine  [--input FILE.csv | --demo nist|ukdale|dataport|city]
             [--sigma F] [--delta F] [--window MIN] [--overlap MIN]
             [--threshold F | --states N] [--scale F]
             [--mu F | --approx-density F] [--max-events N] [--json]
  ftpm graph [--input FILE.csv | --demo ...] [--mu F] [--scale F]

OPTIONS:
  --input FILE       CSV with a time column followed by numeric variables
  --demo NAME        use a built-in synthetic dataset instead of a file
  --scale F          demo dataset scale in (0,1]          [default 0.02]
  --sigma F          support threshold in (0,1]           [default 0.5]
  --delta F          confidence threshold in (0,1]        [default 0.5]
  --window MIN       sequence window length in ticks      [default 360]
  --overlap MIN      window overlap t_ov in ticks         [default 0]
  --threshold F      On/Off symbolization threshold       [default 0.05]
  --states N         use N quantile states instead of On/Off
  --mu F             A-HTPGM with explicit NMI threshold
  --approx-density F A-HTPGM with correlation-graph density target
  --max-events N     cap pattern length                   [default 5]
  --json             machine-readable output"
    );
}

struct Options {
    input: Option<String>,
    demo: Option<String>,
    scale: f64,
    sigma: f64,
    delta: f64,
    window: i64,
    overlap: i64,
    threshold: f64,
    states: Option<usize>,
    mu: Option<f64>,
    density: Option<f64>,
    max_events: usize,
    json: bool,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opt = Options {
        input: None,
        demo: None,
        scale: 0.02,
        sigma: 0.5,
        delta: 0.5,
        window: 360,
        overlap: 0,
        threshold: 0.05,
        states: None,
        mu: None,
        density: None,
        max_events: 5,
        json: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--input" => opt.input = Some(value("--input")?),
            "--demo" => opt.demo = Some(value("--demo")?),
            "--scale" => opt.scale = num(&value("--scale")?)?,
            "--sigma" => opt.sigma = num(&value("--sigma")?)?,
            "--delta" => opt.delta = num(&value("--delta")?)?,
            "--window" => opt.window = num(&value("--window")?)? as i64,
            "--overlap" => opt.overlap = num(&value("--overlap")?)? as i64,
            "--threshold" => opt.threshold = num(&value("--threshold")?)?,
            "--states" => opt.states = Some(num(&value("--states")?)? as usize),
            "--mu" => opt.mu = Some(num(&value("--mu")?)?),
            "--approx-density" => opt.density = Some(num(&value("--approx-density")?)?),
            "--max-events" => opt.max_events = num(&value("--max-events")?)? as usize,
            "--json" => opt.json = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if opt.input.is_none() && opt.demo.is_none() {
        return Err("need --input FILE or --demo NAME".into());
    }
    Ok(opt)
}

fn num(s: &str) -> Result<f64, String> {
    s.parse::<f64>().map_err(|e| format!("bad number {s:?}: {e}"))
}

/// Loads the symbolic + sequence databases from the chosen source.
fn load(opt: &Options) -> Result<(SymbolicDatabase, SequenceDatabase), String> {
    if let Some(demo) = &opt.demo {
        let d = match demo.as_str() {
            "nist" => nist_like(opt.scale),
            "ukdale" => ukdale_like(opt.scale),
            "dataport" => dataport_like(opt.scale),
            "city" => smartcity_like(opt.scale),
            other => return Err(format!("unknown demo dataset {other:?}")),
        };
        return Ok((d.syb, d.seq));
    }
    let path = opt.input.as_ref().expect("checked in parse");
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let series = parse_csv(&text)?;
    let mut syb = SymbolicDatabase::new(series[0].start(), series[0].step(), series[0].len());
    for ts in &series {
        match opt.states {
            None => {
                syb.add_time_series(ts, &ThresholdSymbolizer::new(opt.threshold));
            }
            Some(n) => {
                let labels: Vec<String> = (0..n).map(|i| format!("S{i}")).collect();
                let q = QuantileSymbolizer::from_data(labels, ts.values());
                syb.add_time_series(ts, &q);
            }
        }
    }
    let seq = to_sequence_database(&syb, SplitConfig::new(opt.window, opt.overlap));
    Ok((syb, seq))
}

fn run_mine(args: &[String]) -> ExitCode {
    let opt = match parse(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (syb, seq) = match load(&opt) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = MinerConfig::new(opt.sigma, opt.delta).with_max_events(opt.max_events.max(2));
    let started = std::time::Instant::now();
    let (result, label) = if let Some(mu) = opt.mu {
        (mine_approximate(&syb, &seq, mu, &cfg).result, format!("A-HTPGM(mu={mu})"))
    } else if let Some(d) = opt.density {
        (
            mine_approximate_with_density(&syb, &seq, d, &cfg).result,
            format!("A-HTPGM(density={d})"),
        )
    } else {
        (mine_exact(&seq, &cfg), "E-HTPGM".to_owned())
    };
    let elapsed = started.elapsed();

    if opt.json {
        let payload = serde_json::json!({
            "miner": label,
            "sequences": seq.len(),
            "distinct_events": seq.registry().len(),
            "elapsed_ms": elapsed.as_millis() as u64,
            "patterns": result.patterns.iter().map(|p| serde_json::json!({
                "pattern": p.pattern.display(seq.registry()).to_string(),
                "support": p.support,
                "rel_support": p.rel_support,
                "confidence": p.confidence,
            })).collect::<Vec<_>>(),
        });
        println!("{}", serde_json::to_string_pretty(&payload).expect("serializable"));
    } else {
        println!(
            "{label}: {} sequences, {} distinct events, {} patterns in {elapsed:.1?}",
            seq.len(),
            seq.registry().len(),
            result.len(),
        );
        print!("{}", result.render(seq.registry()));
    }
    ExitCode::SUCCESS
}

fn run_graph(args: &[String]) -> ExitCode {
    let opt = match parse(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (syb, _) = match load(&opt) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mu = opt.mu.unwrap_or_else(|| mu_for_density(&syb, 0.4));
    let graph = CorrelationGraph::build(&syb, mu);
    println!(
        "correlation graph: {} vertices, {} edges, density {:.2} (mu = {mu:.3})",
        graph.n_vertices(),
        graph.n_edges(),
        graph.density(),
    );
    for (i, a) in syb.iter() {
        for (j, b) in syb.iter() {
            if i < j && graph.has_edge(i, j) {
                println!(
                    "  {} -- {}  (NMI {:.2}/{:.2})",
                    a.name(),
                    b.name(),
                    graph.nmi(i, j),
                    graph.nmi(j, i),
                );
            }
        }
    }
    ExitCode::SUCCESS
}
