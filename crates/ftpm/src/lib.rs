#![forbid(unsafe_code)]
//! **FTPMfTS** — Frequent Temporal Pattern Mining from Time Series.
//!
//! A Rust implementation of Ho, Ho & Pedersen, *"Efficient Temporal
//! Pattern Mining in Big Time Series Using Mutual Information"*
//! (VLDB 2021). This facade crate re-exports the whole pipeline:
//!
//! | stage | crate | entry points |
//! |-------|-------|--------------|
//! | raw time series → symbols | `ftpm-timeseries` | [`TimeSeries`], [`ThresholdSymbolizer`], [`QuantileSymbolizer`], [`SymbolicDatabase`] |
//! | symbols → event sequences | `ftpm-events` | [`to_sequence_database`], [`SplitConfig`], [`SequenceDatabase`] |
//! | exact mining | `ftpm-core` | [`mine_exact`], [`mine_exact_parallel`], [`MinerConfig`] |
//! | streaming output | `ftpm-core` | [`PatternSink`], [`mine_exact_with_sink`], [`CsvSink`], [`JsonlSink`] |
//! | MI-approximate mining | `ftpm-core` + `ftpm-mi` | [`mine_approximate`], [`mine_approximate_parallel`], [`mine_approximate_sharded_exchange`], [`CorrelationGraph`], [`confidence_lower_bound`] |
//! | baselines | `ftpm-baselines` | [`mine_tpminer`], [`mine_ieminer`], [`mine_hdfs`] |
//! | synthetic data | `ftpm-datagen` | [`nist_like`], [`smartcity_like`], … |
//!
//! # End-to-end example
//!
//! ```
//! use ftpm::*;
//!
//! // 1. Raw time series (watts, sampled every 5 minutes).
//! let kitchen = TimeSeries::new("kitchen", 0, 5,
//!     vec![120.0, 130.0, 0.01, 0.0, 110.0, 95.0, 0.0, 0.0]);
//! let toaster = TimeSeries::new("toaster", 0, 5,
//!     vec![0.0, 900.0, 850.0, 0.0, 0.0, 920.0, 875.0, 0.0]);
//!
//! // 2. Symbolize (On iff >= 0.05 W, as in the paper) into D_SYB.
//! let mut syb = SymbolicDatabase::new(0, 5, 8);
//! let sym = ThresholdSymbolizer::new(0.05);
//! syb.add_time_series(&kitchen, &sym);
//! syb.add_time_series(&toaster, &sym);
//!
//! // 3. Split into 20-minute sequences: D_SEQ.
//! let seq_db = to_sequence_database(&syb, SplitConfig::new(20, 0));
//!
//! // 4. Mine with sigma = delta = 0.5.
//! let result = mine_exact(&seq_db, &MinerConfig::new(0.5, 0.5));
//! println!("{}", result.render(seq_db.registry()));
//! assert!(!result.patterns.is_empty());
//! ```

mod csv;

pub use csv::parse_csv;
pub use ftpm_baselines::{mine_hdfs, mine_ieminer, mine_tpminer};
pub use ftpm_bitmap::Bitmap;
pub use ftpm_core::{
    closed_patterns, correlation_filter, event_indicator_database, maximal_patterns,
    pattern_lift, rank_patterns, top_k_by_lift, mine_approximate,
    mine_approximate_event_level, mine_approximate_graph_with_sink, mine_approximate_parallel,
    mine_approximate_parallel_with_sink, mine_approximate_sharded_exchange,
    mine_approximate_with_density, mine_approximate_with_sink, mine_exact, mine_exact_parallel,
    mine_exact_parallel_with_sink, mine_exact_with_sink, mine_reference,
    mine_reference_filtered, mine_sharded, mine_sharded_exchange, ApproxOutcome, CollectSink,
    CorrelationFilter, CountingSink, CsvSink, DatabaseIndex, ExploreStats, Explorer,
    DeltaKey, EventsRev, FrequentPattern, HierarchicalPatternGraph, JsonlSink, Level,
    MergeSink, MinerConfig, MiningResult, MiningStats, Node, Pattern, PatternId, PatternPool,
    PatternSink, PatternSort, PoolView, PruningConfig, Schedule, Shard, ShardMerge, ShardPlan,
    ShardPlanner, ShardReport, ShardedMining,
};
pub use ftpm_datagen::{
    dataport_like, generate_city, generate_energy, nist_like, random_sequence_database,
    smartcity_like, ukdale_like, CityConfig, Dataset, EnergyConfig,
};
pub use ftpm_events::{
    to_sequence_database, BoundaryPolicy, EventId, EventInstance, EventRegistry, Interval,
    InvalidInterval, RelationConfig, SequenceDatabase, ShardSpan, SplitConfig,
    TemporalRelation, TemporalSequence,
};
pub use ftpm_mi::{
    conditional_entropy, confidence_lower_bound, entropy, joint_distribution, mu_for_density,
    mutual_information, normalized_mutual_information, CorrelationGraph,
};
pub use ftpm_timeseries::{
    Alphabet, QuantileSymbolizer, SaxSymbolizer, SymbolId, SymbolicDatabase, SymbolicSeries,
    Symbolizer, ThresholdSymbolizer, TimeSeries, TrendSymbolizer, VariableId,
};
