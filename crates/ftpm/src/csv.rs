//! Minimal CSV ingestion for the CLI and for programmatic use: a time
//! column at a constant step followed by numeric variable columns.

use ftpm_timeseries::TimeSeries;

/// Parses CSV text into one [`TimeSeries`] per variable column.
///
/// Expected shape:
///
/// ```csv
/// time,kitchen,toaster
/// 0,120.0,0.0
/// 5,130.0,900.0
/// ```
///
/// The time column must increase by a constant positive step.
///
/// # Errors
///
/// Returns a human-readable message on any structural problem (ragged
/// rows, non-numeric cells, irregular timestamps).
pub fn parse_csv(text: &str) -> Result<Vec<TimeSeries>, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("empty csv")?;
    let names: Vec<&str> = header.split(',').skip(1).map(str::trim).collect();
    if names.is_empty() {
        return Err("csv needs a time column plus at least one variable".into());
    }
    let mut times: Vec<i64> = Vec::new();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
    for (lno, line) in lines.enumerate() {
        let row = lno + 2;
        let mut fields = line.split(',').map(str::trim);
        let t = fields.next().ok_or_else(|| format!("line {row}: missing time"))?;
        times.push(
            t.parse::<i64>()
                .map_err(|e| format!("line {row}: bad time {t:?}: {e}"))?,
        );
        for (name, column) in names.iter().zip(columns.iter_mut()) {
            let f = fields
                .next()
                .ok_or_else(|| format!("line {row}: missing value for {name}"))?;
            column.push(
                f.parse::<f64>()
                    .map_err(|e| format!("line {row}: bad value {f:?}: {e}"))?,
            );
        }
        if fields.next().is_some() {
            return Err(format!("line {row}: too many fields"));
        }
    }
    if times.len() < 2 {
        return Err("need at least two data rows".into());
    }
    let step = times[1] - times[0];
    if step <= 0 || !times.windows(2).all(|w| w[1] - w[0] == step) {
        return Err("time column must increase at a constant step".into());
    }
    Ok(names
        .iter()
        .zip(columns)
        .map(|(name, column)| TimeSeries::new(*name, times[0], step, column))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_well_formed_csv() {
        let series = parse_csv("time,a,b\n0,1.5,2\n5,0.5,3\n10,0,4\n").unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].name(), "a");
        assert_eq!(series[0].step(), 5);
        assert_eq!(series[1].values(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn rejects_irregular_timestamps() {
        let err = parse_csv("time,a\n0,1\n5,2\n12,3\n").unwrap_err();
        assert!(err.contains("constant step"), "{err}");
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = parse_csv("time,a,b\n0,1\n").unwrap_err();
        assert!(err.contains("missing value"), "{err}");
        let err = parse_csv("time,a\n0,1,9\n5,2,9\n").unwrap_err();
        assert!(err.contains("too many fields"), "{err}");
    }

    #[test]
    fn rejects_non_numeric_cells() {
        let err = parse_csv("time,a\n0,x\n5,1\n").unwrap_err();
        assert!(err.contains("bad value"), "{err}");
    }

    #[test]
    fn rejects_too_short_input() {
        assert!(parse_csv("time,a\n0,1\n").is_err());
        assert!(parse_csv("").is_err());
        assert!(parse_csv("time\n0\n5\n").is_err());
    }

    #[test]
    fn skips_blank_lines() {
        let series = parse_csv("time,a\n\n0,1\n\n5,2\n\n").unwrap();
        assert_eq!(series[0].len(), 2);
    }
}
