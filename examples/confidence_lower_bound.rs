//! Theorem 1 in practice: the confidence of every frequent event pair
//! from mu-correlated series stays above the closed-form lower bound
//! LB(sigma, sigma_m, n_x, mu).
//!
//! Run with: `cargo run --release --example confidence_lower_bound`

use ftpm::*;

fn main() {
    println!("LB(sigma, sigma_m, n_x, mu) — Eq. 11 of the paper\n");
    println!("  sigma  sigma_m  n_x   mu     LB");
    for &(sigma, sigma_m, n_x) in &[(0.2, 0.4, 2), (0.3, 0.5, 2), (0.3, 0.5, 5)] {
        for &mu in &[0.2, 0.4, 0.6, 0.8, 0.95] {
            let lb = confidence_lower_bound(sigma, sigma_m, n_x, mu);
            println!("  {sigma:>5}  {sigma_m:>7}  {n_x:>3}  {mu:>4}  {lb:>6.4}");
        }
        println!();
    }

    // Empirical side: on correlated series, frequent pairs keep high
    // confidence; on uncorrelated ones the confidence floor collapses —
    // which is exactly why A-HTPGM may prune them (Fig 8).
    let data = dataport_like(0.02);
    let cfg = MinerConfig::new(0.3, 0.01).with_max_events(2);
    let exact = mine_exact(&data.seq, &cfg);

    let mu = mu_for_density(&data.syb, 0.4);
    let graph = CorrelationGraph::build(&data.syb, mu);
    let registry = data.seq.registry();

    let (mut corr_min, mut uncorr_min) = (f64::INFINITY, f64::INFINITY);
    let (mut n_corr, mut n_uncorr) = (0usize, 0usize);
    for p in exact.patterns.iter().filter(|p| p.pattern.len() == 2) {
        let va = registry.variable(p.pattern.events()[0]);
        let vb = registry.variable(p.pattern.events()[1]);
        if graph.has_edge(va, vb) {
            corr_min = corr_min.min(p.confidence);
            n_corr += 1;
        } else {
            uncorr_min = uncorr_min.min(p.confidence);
            n_uncorr += 1;
        }
    }
    println!(
        "dataport-like at 40% graph density (mu = {mu:.3}):\n  \
         {n_corr} pairs from correlated series, min confidence {corr_min:.2}\n  \
         {n_uncorr} pairs from uncorrelated series, min confidence {uncorr_min:.2}"
    );
}
