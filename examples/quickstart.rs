//! Quickstart: the full FTPMfTS pipeline on the paper's running example
//! (Fig 1 / Table I): six household appliances, raw watt readings →
//! symbolic database → temporal sequences → frequent temporal patterns.
//!
//! Run with: `cargo run --example quickstart`

use ftpm::*;

fn main() {
    // --- 1. Raw time series -------------------------------------------
    // Six appliances sampled every 5 minutes over 3 hours (36 samples),
    // mimicking Table I: Kitchen, Toaster, Microwave, Coffee machine,
    // clothes Ironer, Blender.
    let step = 5; // minutes
    let on_off = |bits: &str| -> Vec<f64> {
        bits.chars()
            .map(|c| if c == '1' { 120.0 } else { 0.01 })
            .collect()
    };
    let rows = [
        ("Kitchen", "111100011000000111000011100110011100"),
        ("Toaster", "011100011001100111000011100110001110"),
        ("Microwave", "000011100111011000110110011001110011"),
        ("Coffee", "000011100110111000110110011001110011"),
        ("Ironer", "000000000110000011000000000110001100"),
        ("Blender", "000000011000000000110000000110000011"),
    ];

    let n_steps = rows[0].1.len();
    let mut syb = SymbolicDatabase::new(0, step, n_steps);
    let symbolizer = ThresholdSymbolizer::new(0.05); // paper Section VI-A2
    for (name, bits) in rows {
        let ts = TimeSeries::new(name, 0, step, on_off(bits));
        syb.add_time_series(&ts, &symbolizer);
    }
    println!(
        "D_SYB: {} variables x {} steps of {} minutes",
        syb.n_variables(),
        syb.n_steps(),
        syb.step()
    );

    // --- 2. Convert to the temporal sequence database ------------------
    // 45-minute windows, no overlap: four sequences, like Table III.
    let split = SplitConfig::new(45, 0);
    let seq_db = to_sequence_database(&syb, split);
    println!("D_SEQ: {} sequences", seq_db.len());
    for (i, seq) in seq_db.sequences().iter().enumerate() {
        println!("  sequence {}: {} event instances", i + 1, seq.len());
    }

    // --- 3. Mine frequent temporal patterns ---------------------------
    let cfg = MinerConfig::new(0.7, 0.7).with_max_events(3);
    let result = mine_exact(&seq_db, &cfg);

    println!(
        "\nE-HTPGM with sigma = delta = 70%: {} frequent single events, {} patterns",
        result.frequent_events.len(),
        result.len()
    );
    println!("\nFrequent temporal patterns:");
    print!("{}", result.render(seq_db.registry()));

    // --- 4. The same, approximately ------------------------------------
    let approx = mine_approximate_with_density(&syb, &seq_db, 0.4, &cfg);
    println!(
        "\nA-HTPGM at 40% graph density (mu = {:.2}): {} patterns, accuracy {:.0}%",
        approx.mu,
        approx.result.len(),
        100.0 * approx.result.accuracy_against(&result)
    );
    println!(
        "correlation graph kept {} of {} possible edges",
        approx.graph.n_edges(),
        syb.n_variables() * (syb.n_variables() - 1) / 2
    );
}
