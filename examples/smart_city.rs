//! Weather → collision association mining — the paper's smart-city
//! scenario (patterns P12–P17 of Table VI: extreme weather conditions
//! linked to high collision injuries, rare but high-confidence).
//!
//! Run with: `cargo run --release --example smart_city`

use ftpm::*;

fn main() {
    let data = smartcity_like(0.02);
    println!(
        "dataset {}: {} sequences, {} variables, {} distinct events",
        data.name,
        data.seq.len(),
        data.syb.n_variables(),
        data.seq.registry().len(),
    );

    // Rare-but-confident patterns: low support, high confidence — the
    // regime the paper highlights for weather/collision associations.
    let cfg = MinerConfig::new(0.1, 0.5).with_max_events(2);
    let started = std::time::Instant::now();
    let result = mine_exact(&data.seq, &cfg);
    println!(
        "\nE-HTPGM(sigma=10%, delta=50%): {} patterns in {:.1?}",
        result.len(),
        started.elapsed()
    );

    let registry = data.seq.registry();
    let is_extreme_weather = |label: &str| {
        label.starts_with("weather")
            && (label.ends_with("VeryHigh") || label.ends_with("VeryLow"))
    };
    let is_bad_collision = |label: &str| {
        label.starts_with("collision")
            && (label.ends_with("High") || label.ends_with("Medium"))
    };
    let mut findings: Vec<&FrequentPattern> = result
        .patterns
        .iter()
        .filter(|p| {
            let labels: Vec<&str> =
                p.pattern.events().iter().map(|&e| registry.label(e)).collect();
            labels.iter().any(|l| is_extreme_weather(l))
                && labels.iter().any(|l| is_bad_collision(l))
        })
        .collect();
    findings.sort_by(|a, b| b.confidence.total_cmp(&a.confidence));

    println!("\nextreme weather -> collision patterns (rare, high confidence):");
    for p in findings.iter().take(12) {
        println!(
            "  {}  supp={:.0}% conf={:.0}%",
            p.pattern.display(registry),
            p.rel_support * 100.0,
            p.confidence * 100.0
        );
    }
    if findings.is_empty() {
        println!("  (none at these thresholds — try lowering sigma)");
    }

    // The correlation graph view A-HTPGM exploits: weather variables on
    // the same latent factor cluster together.
    let mu = mu_for_density(&data.syb, 0.2);
    let graph = CorrelationGraph::build(&data.syb, mu);
    println!(
        "\ncorrelation graph at 20% density: mu={mu:.3}, {} edges, {} correlated of {} series",
        graph.n_edges(),
        graph.correlated_variables().len(),
        data.syb.n_variables(),
    );
}
