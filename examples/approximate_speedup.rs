//! E-HTPGM vs A-HTPGM: the accuracy / runtime trade-off of Section V,
//! swept over correlation-graph densities (the paper's Fig 9 in
//! miniature).
//!
//! Run with: `cargo run --release --example approximate_speedup`

use std::time::Instant;

use ftpm::*;

fn main() {
    let data = nist_like(0.02);
    let cfg = MinerConfig::new(0.3, 0.3).with_max_events(3);

    let started = Instant::now();
    let exact = mine_exact(&data.seq, &cfg);
    let exact_time = started.elapsed();
    println!(
        "E-HTPGM: {} patterns in {exact_time:.1?} on {} sequences x {} events",
        exact.len(),
        data.seq.len(),
        data.seq.registry().len(),
    );

    println!("\n density    mu    patterns  accuracy  runtime   gain");
    for density in [0.8, 0.6, 0.4, 0.2] {
        let started = Instant::now();
        let approx = mine_approximate_with_density(&data.syb, &data.seq, density, &cfg);
        let t = started.elapsed();
        let accuracy = approx.result.accuracy_against(&exact);
        let gain = 1.0 - t.as_secs_f64() / exact_time.as_secs_f64();
        println!(
            "   {:>3.0}%  {:>5.2}  {:>8}  {:>7.1}%  {:>7.1?}  {:>5.1}%",
            density * 100.0,
            approx.mu,
            approx.result.len(),
            accuracy * 100.0,
            t,
            gain * 100.0,
        );
    }

    println!(
        "\nLike the paper's Fig 9: pick a high density (>= 60%) for both good\n\
         accuracy and a solid runtime gain; low densities trade too much\n\
         accuracy for the extra speed."
    );
}
