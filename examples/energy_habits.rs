//! Mining living habits from smart-home energy data — the paper's
//! motivating scenario (Section I and patterns P1–P11 of Table VI).
//!
//! Generates a NIST-like household (72 appliances with daily routines),
//! mines it exactly, and prints the strongest cross-appliance patterns
//! with a habit-style interpretation. Also demonstrates what the pruning
//! techniques save (the Fig 6/7 ablation, in miniature).
//!
//! Run with: `cargo run --release --example energy_habits`

use ftpm::*;

fn main() {
    let data = nist_like(0.02); // ~30 sequences, 72 appliances
    println!(
        "dataset {}: {} sequences, {} variables, {} distinct events",
        data.name,
        data.seq.len(),
        data.syb.n_variables(),
        data.seq.registry().len(),
    );

    let cfg = MinerConfig::new(0.25, 0.25).with_max_events(3);
    let started = std::time::Instant::now();
    let result = mine_exact(&data.seq, &cfg);
    println!(
        "\nE-HTPGM(sigma=25%, delta=25%): {} patterns in {:.1?}",
        result.len(),
        started.elapsed()
    );

    // Show the strongest multi-appliance "habit" patterns: both events On,
    // different appliances.
    let registry = data.seq.registry();
    let mut habits: Vec<&FrequentPattern> = result
        .patterns
        .iter()
        .filter(|p| {
            let evs = p.pattern.events();
            evs.iter()
                .all(|&e| registry.label(e).ends_with("=On"))
                && evs.windows(2).any(|w| {
                    registry.variable(w[0]) != registry.variable(w[1])
                })
        })
        .collect();
    habits.sort_by(|a, b| {
        (b.pattern.len(), b.support, b.confidence.total_cmp(&a.confidence))
            .cmp(&(a.pattern.len(), a.support, a.confidence.total_cmp(&b.confidence)))
    });
    println!("\ntop habit patterns (co-activations across appliances):");
    for p in habits.iter().take(10) {
        println!(
            "  {}  supp={:.0}% conf={:.0}%",
            p.pattern.display(registry),
            p.rel_support * 100.0,
            p.confidence * 100.0
        );
    }

    // Redundancy elimination and interestingness ranking: the raw output
    // is huge, but most of it is implied by longer patterns.
    let closed = closed_patterns(&result);
    let maximal = maximal_patterns(&result);
    println!(
        "\nredundancy: {} raw patterns -> {} closed -> {} maximal",
        result.len(),
        closed.len(),
        maximal.len()
    );
    println!("most surprising co-activations (by lift):");
    for (p, lift) in top_k_by_lift(&result, 5) {
        println!(
            "  lift {:>5.1}  {}  supp={:.0}%",
            lift,
            p.pattern.display(registry),
            p.rel_support * 100.0
        );
    }

    // Ablation in miniature: how much work do the prunings save?
    println!("\npruning ablation (same output, different work):");
    for (name, pruning) in [
        ("NoPrune", PruningConfig::NO_PRUNE),
        ("Apriori", PruningConfig::APRIORI),
        ("Trans  ", PruningConfig::TRANSITIVITY),
        ("All    ", PruningConfig::ALL),
    ] {
        let cfg = cfg.with_pruning(pruning);
        let started = std::time::Instant::now();
        let r = mine_exact(&data.seq, &cfg);
        println!(
            "  {name}: {:>10} instance checks, {:>4} patterns, {:.1?}",
            r.stats.instance_checks,
            r.len(),
            started.elapsed()
        );
    }
}
