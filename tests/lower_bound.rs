//! Empirical validation of Theorem 1 (the confidence lower bound): for
//! every pair of symbolic series and every frequent symbol pair, the
//! confidence observed in D_SEQ must be at least
//! `LB(σ, σ_m, n_x, μ)` where μ is the observed NMI.
//!
//! σ is instantiated as the pair's actual D_SYB support and σ_m
//! conservatively as the largest of the four supports the proof chain
//! bounds with it (the event supports in D_SYB and in D_SEQ) — LB is
//! monotonically decreasing in σ_m, so this choice only weakens the
//! bound, never fabricates it.

use ftpm::*;

/// Builds D_SYB from boolean step matrices and the matching D_SEQ.
fn build(rows: &[Vec<bool>], window: i64) -> (SymbolicDatabase, SequenceDatabase) {
    let n = rows[0].len();
    let mut syb = SymbolicDatabase::new(0, 1, n);
    for (i, row) in rows.iter().enumerate() {
        let labels = row.iter().map(|&b| if b { "On" } else { "Off" });
        syb.push(SymbolicSeries::from_labels(
            format!("V{i}"),
            Alphabet::on_off(),
            labels,
        ));
    }
    let seq = to_sequence_database(&syb, SplitConfig::new(window, 0));
    (syb, seq)
}

/// Deterministic pseudo-random boolean rows with controllable coupling:
/// row `i` copies row 0 with probability `couple`, else flips a biased
/// coin. (Plain LCG; no external RNG needed in this integration test.)
fn correlated_rows(n_rows: usize, n_steps: usize, couple: f64, seed: u64) -> Vec<Vec<bool>> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let base: Vec<bool> = (0..n_steps).map(|_| next() < 0.5).collect();
    (0..n_rows)
        .map(|i| {
            if i == 0 {
                base.clone()
            } else {
                base.iter()
                    .map(|&b| if next() < couple { b } else { next() < 0.4 })
                    .collect()
            }
        })
        .collect()
}

/// Relative support of symbol pair `(x1, y1)` in D_SYB: fraction of
/// aligned steps carrying both symbols (Eq. 12).
fn syb_pair_support(x: &SymbolicSeries, y: &SymbolicSeries, x1: SymbolId, y1: SymbolId) -> f64 {
    let hits = x
        .symbols()
        .iter()
        .zip(y.symbols())
        .filter(|(&a, &b)| a == x1 && b == y1)
        .count();
    hits as f64 / x.len() as f64
}

/// Relative support of a single event in D_SEQ: fraction of sequences
/// containing at least one instance.
fn seq_event_support(seq_db: &SequenceDatabase, event: EventId) -> f64 {
    let n = seq_db.len() as f64;
    seq_db
        .sequences()
        .iter()
        .filter(|s| s.contains_event(event))
        .count() as f64
        / n
}

fn seq_pair_support(seq_db: &SequenceDatabase, a: EventId, b: EventId) -> f64 {
    let n = seq_db.len() as f64;
    seq_db
        .sequences()
        .iter()
        .filter(|s| s.contains_event(a) && s.contains_event(b))
        .count() as f64
        / n
}

#[test]
fn theorem1_bound_holds_empirically() {
    let mut checked = 0usize;
    for seed in 1..8u64 {
        for &couple in &[0.95, 0.8, 0.6] {
            let rows = correlated_rows(4, 240, couple, seed);
            let (syb, seq_db) = build(&rows, 12);
            let reg = seq_db.registry();
            for (vi, x) in syb.iter() {
                for (vj, y) in syb.iter() {
                    if vi == vj {
                        continue;
                    }
                    let mu = normalized_mutual_information(x, y);
                    if mu <= 0.0 {
                        continue;
                    }
                    for x1 in x.alphabet().ids() {
                        for y1 in y.alphabet().ids() {
                            let sigma = syb_pair_support(x, y, x1, y1);
                            if sigma < 0.05 {
                                continue; // not frequent in D_SYB
                            }
                            let (Some(ea), Some(eb)) = (reg.get(vi, x1), reg.get(vj, y1))
                            else {
                                continue;
                            };
                            let sa = seq_event_support(&seq_db, ea);
                            let sb = seq_event_support(&seq_db, eb);
                            let pair = seq_pair_support(&seq_db, ea, eb);
                            if pair == 0.0 {
                                continue;
                            }
                            let conf = pair / sa.max(sb);
                            let px = x.symbol_probabilities()[x1.0 as usize];
                            let py = y.symbol_probabilities()[y1.0 as usize];
                            let sigma_m = px.max(py).max(sa).max(sb).min(1.0);
                            let lb = confidence_lower_bound(
                                sigma.min(sigma_m),
                                sigma_m,
                                x.alphabet().len(),
                                mu,
                            );
                            checked += 1;
                            assert!(
                                conf + 1e-9 >= lb,
                                "Theorem 1 violated: conf={conf:.4} < LB={lb:.4} \
                                 (sigma={sigma:.3}, sigma_m={sigma_m:.3}, mu={mu:.3}, \
                                 seed={seed}, couple={couple})"
                            );
                        }
                    }
                }
            }
        }
    }
    assert!(checked > 100, "only {checked} pairs checked — test too weak");
}

#[test]
fn bound_is_informative_for_tightly_correlated_series() {
    // For strongly coupled series the bound should be meaningfully above
    // zero (otherwise Theorem 1 would be vacuous as a pruning criterion).
    let rows = correlated_rows(2, 480, 0.98, 3);
    let (syb, _) = build(&rows, 12);
    let x = syb.series(VariableId(0));
    let y = syb.series(VariableId(1));
    let mu = normalized_mutual_information(x, y);
    assert!(mu > 0.5, "coupling should give high NMI, got {mu}");
    let lb = confidence_lower_bound(0.3, 0.55, 2, mu);
    assert!(lb > 0.05, "LB should be informative, got {lb}");
}
