//! Workspace smoke test: the quickstart pipeline end-to-end —
//! symbolize → split → mine — asserting each stage produces real output.

use ftpm::*;

/// Builds the paper's running example (Fig 1 / Table I): six appliances,
/// 36 samples at 5-minute steps, On/Off symbolization.
fn table1_symbolic_database() -> SymbolicDatabase {
    let step = 5;
    let rows = [
        ("Kitchen", "111100011000000111000011100110011100"),
        ("Toaster", "011100011001100111000011100110001110"),
        ("Microwave", "000011100111011000110110011001110011"),
        ("Coffee", "000011100110111000110110011001110011"),
        ("Ironer", "000000000110000011000000000110001100"),
        ("Blender", "000000011000000000110000000110000011"),
    ];
    let mut syb = SymbolicDatabase::new(0, step, rows[0].1.len());
    let symbolizer = ThresholdSymbolizer::new(0.05);
    for (name, bits) in rows {
        let values: Vec<f64> = bits
            .chars()
            .map(|c| if c == '1' { 120.0 } else { 0.01 })
            .collect();
        let ts = TimeSeries::new(name, 0, step, values);
        syb.add_time_series(&ts, &symbolizer);
    }
    syb
}

#[test]
fn quickstart_pipeline_end_to_end() {
    // Symbolize.
    let syb = table1_symbolic_database();
    assert_eq!(syb.n_variables(), 6);
    assert_eq!(syb.n_steps(), 36);

    // Split into 45-minute windows, no overlap: four sequences (Table III).
    let seq_db = to_sequence_database(&syb, SplitConfig::new(45, 0));
    assert_eq!(seq_db.len(), 4);
    assert!(
        seq_db.sequences().iter().all(|s| !s.is_empty()),
        "every window of the running example contains event instances"
    );

    // Mine exactly.
    let cfg = MinerConfig::new(0.7, 0.7).with_max_events(3);
    let exact = mine_exact(&seq_db, &cfg);
    assert!(
        !exact.frequent_events.is_empty(),
        "σ = 70% keeps frequent single events on the running example"
    );
    assert!(
        !exact.patterns.is_empty(),
        "the running example yields frequent temporal patterns"
    );
    // Every reported pattern respects the thresholds it was mined with.
    for p in &exact.patterns {
        assert!(p.rel_support >= cfg.sigma - 1e-12);
        assert!(p.confidence >= cfg.delta - 1e-12);
    }

    // Mine approximately; A-HTPGM searches a subgraph, so it can only
    // return a subset of E-HTPGM's patterns.
    let approx = mine_approximate_with_density(&syb, &seq_db, 0.4, &cfg);
    assert!(approx.result.len() <= exact.len());
    let accuracy = approx.result.accuracy_against(&exact);
    assert!((0.0..=1.0).contains(&accuracy));
}
