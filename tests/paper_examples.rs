//! Golden tests against the paper's worked examples: Table I (the
//! symbolic database), Table III (its conversion to D_SEQ), the Fig 4
//! HPG walkthrough (sigma = delta = 0.7 leaves 11 frequent single
//! events), and the Section V-A mutual information example
//! (I(K;T) = 0.29, NMI ≈ 0.42–0.43).

use ftpm::*;

/// Table I of the paper, verbatim: 6 appliances, 36 five-minute samples
/// from 10:00 (tick 600) to 12:55.
fn table1() -> SymbolicDatabase {
    let rows = [
        ("K", "111100011000000111000011100110011100"),
        ("T", "011100011001100111000011100110001110"),
        ("M", "000011100111011000110110011001110011"),
        ("C", "000011100110111000110110011001110011"),
        ("I", "000000000110000011000000000110001100"),
        ("B", "000000011000000000110000000110000011"),
    ];
    let mut syb = SymbolicDatabase::new(600, 5, 36);
    for (name, bits) in rows {
        let labels = bits
            .chars()
            .map(|c| if c == '1' { "On" } else { "Off" });
        syb.push(SymbolicSeries::from_labels(name, Alphabet::on_off(), labels));
    }
    syb
}

/// The paper's 4-sequence split: windows of 9 samples (45 ticks).
fn table3() -> SequenceDatabase {
    to_sequence_database(&table1(), SplitConfig::new(45, 0))
}

#[test]
fn table1_marginals_match_paper() {
    let syb = table1();
    let k = syb.series(syb.lookup("K").unwrap());
    let t = syb.series(syb.lookup("T").unwrap());
    let pk = k.symbol_probabilities();
    let pt = t.symbol_probabilities();
    // Section V-A: p(KOn) = 17/36, p(KOff) = 19/36, p(TOn) = p(TOff) = 18/36.
    assert!((pk[1] - 17.0 / 36.0).abs() < 1e-12, "p(KOn) = {}", pk[1]);
    assert!((pk[0] - 19.0 / 36.0).abs() < 1e-12);
    assert!((pt[1] - 0.5).abs() < 1e-12);
}

#[test]
fn mutual_information_worked_example() {
    let syb = table1();
    let k = syb.series(syb.lookup("K").unwrap());
    let t = syb.series(syb.lookup("T").unwrap());
    // "Using Eq. 9, we have I(K;T) = 0.29" (natural log).
    let mi = mutual_information(k, t);
    assert!(
        (mi - 0.29).abs() < 0.01,
        "I(K;T) = {mi}, paper reports 0.29"
    );
    // "we have NMI(K;T) = 0.43 … and NMI(T;K) = 0.42". The paper rounds
    // aggressively; recomputing from its own Table I probabilities gives
    // 0.42 both ways, so accept ±0.015.
    let nmi_kt = normalized_mutual_information(k, t);
    let nmi_tk = normalized_mutual_information(t, k);
    assert!((nmi_kt - 0.425).abs() < 0.015, "NMI(K;T) = {nmi_kt}");
    assert!((nmi_tk - 0.42).abs() < 0.015, "NMI(T;K) = {nmi_tk}");
    // And the asymmetry direction matches the paper: NMI(K;T) > NMI(T;K)
    // because H(K) < H(T).
    assert!(nmi_kt > nmi_tk);
}

#[test]
fn table3_sequence_structure() {
    let seq_db = table3();
    assert_eq!(seq_db.len(), 4, "paper splits Table I into 4 sequences");
    // Sequence 1 (Table III row 1) has 16 instances:
    // K:3 T:4 M:3 C:3 I:1 B:2.
    assert_eq!(seq_db.sequences()[0].len(), 16);
    let reg = seq_db.registry();
    let k_on = reg.lookup_label("K=On").unwrap();
    let s1 = &seq_db.sequences()[0];
    assert_eq!(s1.instances_of(k_on).count(), 2, "KOn twice in sequence 1");
    // Def 3.4's example: KOn has 6 instances across the whole database.
    let total_kon: usize = seq_db
        .sequences()
        .iter()
        .map(|s| s.instances_of(k_on).count())
        .sum();
    assert_eq!(total_kon, 6);
}

#[test]
fn fig4_frequent_single_events() {
    let seq_db = table3();
    let result = mine_exact(&seq_db, &MinerConfig::new(0.7, 0.7).with_max_events(3));
    // "1Freq contains 11 frequent events … The event IOn is not frequent
    // since it only appears in sequences 2 and 4."
    assert_eq!(result.frequent_events.len(), 11);
    let reg = seq_db.registry();
    let i_on = reg.lookup_label("I=On").unwrap();
    assert!(
        !result.frequent_events.iter().any(|(e, _)| *e == i_on),
        "IOn must not be frequent"
    );
    // The KOn bitmap at L1 is [1,1,1,1]: support 4.
    let k_on = reg.lookup_label("K=On").unwrap();
    let (_, supp) = result
        .frequent_events
        .iter()
        .find(|(e, _)| *e == k_on)
        .unwrap();
    assert_eq!(*supp, 4);
}

#[test]
fn fig4_kitchen_contains_toaster() {
    // Fig 1/Fig 4's flagship relation: the kitchen's activation contains
    // the toaster's in every sequence.
    let seq_db = table3();
    let result = mine_exact(&seq_db, &MinerConfig::new(0.7, 0.7).with_max_events(2));
    let reg = seq_db.registry();
    let k_on = reg.lookup_label("K=On").unwrap();
    let t_on = reg.lookup_label("T=On").unwrap();
    let hit = result.patterns.iter().find(|p| {
        p.pattern.events() == [k_on, t_on]
            && p.pattern.relations() == [TemporalRelation::Contain]
    });
    let hit = hit.expect("(K=On Contain T=On) must be frequent");
    assert_eq!(hit.support, 4);
    assert!((hit.confidence - 1.0).abs() < 1e-9);
}

#[test]
fn fig5_correlation_graph_density_example() {
    // Section V-C: "The complete graph of 6 vertices has 15 edges. If we
    // set the density of the correlation graph to be 40%, then G_C will
    // have 15 × 40% = 6 edges."
    let syb = table1();
    let mu = mu_for_density(&syb, 0.4);
    let graph = CorrelationGraph::build(&syb, mu);
    assert_eq!(graph.n_vertices(), 6);
    assert!(
        graph.n_edges() >= 6,
        "40% density must keep at least 6 of 15 edges, got {}",
        graph.n_edges()
    );
    // Fig 5 shows K,T,M,C forming the correlated core (I and B are too
    // sparse). Verify K-T, K-M/C-M style edges exist among the top ones.
    let (k, t) = (syb.lookup("K").unwrap(), syb.lookup("T").unwrap());
    assert!(graph.has_edge(k, t), "K–T edge expected, as in Fig 5");
}

#[test]
fn approximate_on_paper_example_matches_exact_at_full_density()
{
    let syb = table1();
    let seq_db = table3();
    let cfg = MinerConfig::new(0.7, 0.7).with_max_events(3);
    let exact = mine_exact(&seq_db, &cfg);
    // Keep every positively-correlated edge: accuracy should be perfect
    // on this tiny example because all of K,T,M,C correlate.
    let approx = mine_approximate(&syb, &seq_db, 1e-6, &cfg);
    assert_eq!(approx.result.len(), exact.len());
    // And a high threshold prunes patterns but never invents them.
    let strict = mine_approximate(&syb, &seq_db, 0.42, &cfg);
    assert!(strict.result.len() <= exact.len());
    let exact_keys = exact.pattern_keys();
    for p in &strict.result.patterns {
        assert!(exact_keys.contains(&p.pattern));
    }
}
