//! End-to-end pipeline tests: raw numeric series in, frequent temporal
//! patterns out, across both application domains.

use ftpm::*;

#[test]
fn energy_pipeline_end_to_end() {
    let series = generate_energy(&EnergyConfig {
        n_appliances: 8,
        days: 20,
        ..EnergyConfig::default()
    });
    let n_steps = series[0].len();
    let mut syb = SymbolicDatabase::new(0, 5, n_steps);
    let symbolizer = ThresholdSymbolizer::new(0.05);
    for ts in &series {
        syb.add_time_series(ts, &symbolizer);
    }
    let seq_db = to_sequence_database(&syb, SplitConfig::new(360, 0));
    assert_eq!(seq_db.len(), 20 * 4, "four 6-hour windows per day");

    let result = mine_exact(&seq_db, &MinerConfig::new(0.3, 0.3).with_max_events(3));
    assert!(!result.is_empty(), "routines must produce patterns");

    // Group members (appliance_00..03 share a routine) must co-occur in
    // some frequent On-pattern.
    let reg = seq_db.registry();
    let cross_group_on = result.patterns.iter().any(|p| {
        let labels: Vec<&str> = p.pattern.events().iter().map(|&e| reg.label(e)).collect();
        labels.iter().all(|l| l.ends_with("=On"))
            && labels.iter().any(|l| l.starts_with("appliance_00"))
            && labels.iter().any(|l| l.starts_with("appliance_01"))
    });
    assert!(
        cross_group_on,
        "appliances of the same routine group should form frequent On patterns"
    );
}

#[test]
fn city_pipeline_end_to_end() {
    let data = smartcity_like(0.02);
    let result = mine_exact(&data.seq, &MinerConfig::new(0.2, 0.2).with_max_events(2));
    assert!(!result.is_empty());
    // Multi-state alphabets: some pattern must involve a non-binary
    // symbol (anything not On/Off).
    let reg = data.seq.registry();
    assert!(result.patterns.iter().any(|p| {
        p.pattern
            .events()
            .iter()
            .any(|&e| !reg.label(e).ends_with("=On") && !reg.label(e).ends_with("=Off"))
    }));
}

#[test]
fn mining_result_serializes_to_json() {
    let data = dataport_like(0.01);
    let result = mine_exact(&data.seq, &MinerConfig::new(0.5, 0.5).with_max_events(2));
    let json = serde_json::to_string(&result).expect("serialize");
    let back: MiningResult = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.len(), result.len());
    assert_eq!(back.patterns, result.patterns);
}

#[test]
fn render_lists_every_pattern() {
    let data = dataport_like(0.01);
    let result = mine_exact(&data.seq, &MinerConfig::new(0.4, 0.4).with_max_events(2));
    let text = result.render(data.seq.registry());
    assert_eq!(text.lines().count(), result.len());
    for line in text.lines() {
        assert!(line.contains("supp="), "{line}");
        assert!(line.contains("conf="), "{line}");
    }
}

#[test]
fn relative_support_matches_definition() {
    let data = dataport_like(0.01);
    let n = data.seq.len() as f64;
    let result = mine_exact(&data.seq, &MinerConfig::new(0.3, 0.3).with_max_events(2));
    for p in &result.patterns {
        assert!((p.rel_support - p.support as f64 / n).abs() < 1e-12);
    }
}

#[test]
fn higher_sigma_yields_subset() {
    let data = dataport_like(0.01);
    let lo = mine_exact(&data.seq, &MinerConfig::new(0.2, 0.2).with_max_events(3));
    let hi = mine_exact(&data.seq, &MinerConfig::new(0.5, 0.2).with_max_events(3));
    let lo_keys = lo.pattern_keys();
    assert!(hi.len() <= lo.len());
    for p in &hi.patterns {
        assert!(lo_keys.contains(&p.pattern), "sigma-monotonicity violated");
    }
}

#[test]
fn higher_delta_yields_subset() {
    let data = dataport_like(0.01);
    let lo = mine_exact(&data.seq, &MinerConfig::new(0.2, 0.2).with_max_events(3));
    let hi = mine_exact(&data.seq, &MinerConfig::new(0.2, 0.6).with_max_events(3));
    let lo_keys = lo.pattern_keys();
    assert!(hi.len() <= lo.len());
    for p in &hi.patterns {
        assert!(lo_keys.contains(&p.pattern), "delta-monotonicity violated");
    }
}
