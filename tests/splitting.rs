//! The overlapping splitting strategy of Section IV-B2 (Fig 3): a
//! splitting point can cut a pattern into different sequences and lose
//! it; overlapping consecutive windows by t_ov = t_max preserves every
//! pattern of duration at most t_max.

use ftpm::*;

/// Builds the Fig 3 scenario: a 4-event cascade (K, T, M, C switch on in
/// succession) placed so that a non-overlapping split at t = 40 separates
/// K,T from M,C. One sample per tick.
fn fig3_database() -> SymbolicDatabase {
    let n = 80usize;
    let mut rows = vec![vec!['0'; n]; 4];
    // The cascade straddles the boundary at 40: K [30,36), T [33,39),
    // M [41,47), C [44,50). Repeat it in every 80-tick super-period so
    // the pattern is frequent.
    let marks: [(usize, usize); 4] = [(30, 36), (33, 39), (41, 47), (44, 50)];
    for (row, (s, e)) in rows.iter_mut().zip(marks) {
        for slot in &mut row[s..e] {
            *slot = '1';
        }
    }
    let names = ["K", "T", "M", "C"];
    let mut syb = SymbolicDatabase::new(0, 1, n);
    for (name, row) in names.iter().zip(rows) {
        let labels = row
            .iter()
            .map(|&c| if c == '1' { "On" } else { "Off" });
        syb.push(SymbolicSeries::from_labels(*name, Alphabet::on_off(), labels));
    }
    syb
}

fn mine_keys(seq_db: &SequenceDatabase, events: &[&str]) -> Vec<Pattern> {
    // Sigma small enough that a single supporting sequence suffices.
    let cfg = MinerConfig::new(0.01, 0.01)
        .with_max_events(4)
        .with_relation(RelationConfig::new(0, 1, 40));
    let result = mine_exact(seq_db, &cfg);
    let reg = seq_db.registry();
    let wanted: Vec<EventId> = events
        .iter()
        .map(|n| reg.lookup_label(&format!("{n}=On")).expect("event exists"))
        .collect();
    result
        .patterns
        .iter()
        .filter(|p| p.pattern.len() == 4 && {
            let mut evs = p.pattern.events().to_vec();
            evs.sort_unstable();
            let mut want = wanted.clone();
            want.sort_unstable();
            evs == want
        })
        .map(|p| p.pattern.clone())
        .collect()
}

#[test]
fn non_overlapping_split_loses_the_cascade() {
    let syb = fig3_database();
    // Windows of 40 ticks, no overlap: the boundary at 40 cuts the
    // cascade (K,T before; M,C after) — Fig 3a.
    let seq_db = to_sequence_database(&syb, SplitConfig::new(40, 0));
    assert_eq!(seq_db.len(), 2);
    assert!(
        mine_keys(&seq_db, &["K", "T", "M", "C"]).is_empty(),
        "the 4-event pattern must be lost without overlap"
    );
}

#[test]
fn overlap_t_max_preserves_the_cascade() {
    let syb = fig3_database();
    // Same windows overlapped by t_ov = t_max = 40... window must be
    // larger than overlap; use window 60 with overlap 40 (stride 20):
    // every 40-tick span lies inside some window — Fig 3b.
    let seq_db = to_sequence_database(&syb, SplitConfig::new(60, 40));
    let found = mine_keys(&seq_db, &["K", "T", "M", "C"]);
    assert!(
        !found.is_empty(),
        "overlapping split must preserve the 4-event cascade"
    );
}

#[test]
fn overlap_preserves_all_short_patterns_generically() {
    // Generic preservation (Fig 3b): every pattern of the *underlying
    // data* with duration at most t_max must survive a split whose
    // windows overlap by t_ov = t_max. The ground truth is the unsplit
    // database mined as one sequence: an occurrence of duration ≤ 40
    // starting at s lies wholly inside window [0, 60) when s < 20 and
    // inside [20, 80) otherwise, so none of its instances is clipped and
    // every relation carries over verbatim. (Comparing against a
    // *clipped* non-overlapping split instead would be wrong: cutting a
    // run at a window boundary can fabricate short occurrences that
    // exist in no window of any other split.)
    let syb = fig3_database();
    let unsplit = to_sequence_database(&syb, SplitConfig::new(80, 0));
    let overlapped = to_sequence_database(&syb, SplitConfig::new(60, 40));
    let cfg = MinerConfig::new(0.01, 0.01)
        .with_max_events(3)
        .with_relation(RelationConfig::new(0, 1, 40));
    let base = mine_exact(&unsplit, &cfg);
    assert!(!base.is_empty(), "the unsplit data must contain patterns");
    let with_overlap = mine_exact(&overlapped, &cfg);
    let better = with_overlap.pattern_keys();
    for p in &base.patterns {
        assert!(
            better.contains(&p.pattern),
            "pattern lost despite overlap: {:?}",
            p.pattern
        );
    }
}

#[test]
fn true_extent_overlap_split_matches_the_unsplit_baseline_exactly() {
    // The property repro_boundary asserts on the energy demo, on the
    // Fig 3 cascade: under BoundaryPolicy::TrueExtent with t_ov = t_max,
    // the overlapped split finds *exactly* the unsplit database's
    // patterns of duration <= t_max — not just the lower bound the
    // overlap lemma guarantees.
    let syb = fig3_database();
    let unsplit = to_sequence_database(&syb, SplitConfig::new(80, 0));
    let overlapped = to_sequence_database(&syb, SplitConfig::new(60, 40));
    let cfg = MinerConfig::new(0.01, 0.01)
        .with_max_events(4)
        .with_relation(RelationConfig::new(0, 1, 40).with_boundary(BoundaryPolicy::TrueExtent));
    let labels = |db: &SequenceDatabase| -> std::collections::BTreeSet<String> {
        mine_exact(db, &cfg)
            .patterns
            .iter()
            .map(|p| p.pattern.display(db.registry()).to_string())
            .collect()
    };
    let base = labels(&unsplit);
    let split = labels(&overlapped);
    assert!(!base.is_empty(), "the unsplit data must contain patterns");
    assert_eq!(base, split, "true-extent split must equal the baseline");
}

#[test]
fn clip_policy_default_reproduces_historical_results() {
    // BoundaryPolicy::Clip is the default and must not change anything:
    // same pattern set, supports and confidences as a config that never
    // mentions the policy.
    let syb = fig3_database();
    let seq_db = to_sequence_database(&syb, SplitConfig::new(40, 0));
    let plain = MinerConfig::new(0.01, 0.01)
        .with_max_events(3)
        .with_relation(RelationConfig::new(0, 1, 40));
    let explicit = plain
        .with_relation(RelationConfig::new(0, 1, 40).with_boundary(BoundaryPolicy::Clip));
    let a = mine_exact(&seq_db, &plain);
    let b = mine_exact(&seq_db, &explicit);
    assert_eq!(a.patterns, b.patterns);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn more_overlap_never_finds_fewer_patterns_here() {
    let syb = fig3_database();
    let cfg = MinerConfig::new(0.01, 0.01)
        .with_max_events(4)
        .with_relation(RelationConfig::new(0, 1, 40));
    let mut counts = Vec::new();
    for overlap in [0, 20, 40] {
        let seq_db = to_sequence_database(&syb, SplitConfig::new(60, overlap));
        counts.push(mine_exact(&seq_db, &cfg).len());
    }
    assert!(
        counts.windows(2).all(|w| w[0] <= w[1]),
        "pattern count should grow with overlap on the cascade data: {counts:?}"
    );
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    /// Builds a two-variable binary symbolic database from one bit
    /// vector (the second variable is the negation, so both always have
    /// runs everywhere) at the given step.
    fn two_var_db(bits: &[u8], step: i64) -> SymbolicDatabase {
        let mut syb = SymbolicDatabase::new(0, step, bits.len());
        for (name, flip) in [("K", 0u8), ("T", 1u8)] {
            let labels = bits
                .iter()
                .map(|&b| if b ^ flip == 1 { "On" } else { "Off" });
            syb.push(SymbolicSeries::from_labels(name, Alphabet::on_off(), labels));
        }
        syb
    }

    /// The pre-extent splitting algorithm, reimplemented verbatim: slice
    /// each window's symbols, merge runs, clip to the window. Returns
    /// per-window sorted `(label, start, end)` triples.
    fn naive_clip_split(
        db: &SymbolicDatabase,
        win_steps: usize,
        stride_steps: usize,
    ) -> Vec<Vec<(String, i64, i64)>> {
        let mut windows = Vec::new();
        let mut first = 0usize;
        while first + win_steps <= db.n_steps() {
            let mut rows = Vec::new();
            for (_, series) in db.iter() {
                let symbols = &series.symbols()[first..first + win_steps];
                let mut run_start = 0usize;
                while run_start < symbols.len() {
                    let sym = symbols[run_start];
                    let mut run_end = run_start + 1;
                    while run_end < symbols.len() && symbols[run_end] == sym {
                        run_end += 1;
                    }
                    rows.push((
                        format!("{}={}", series.name(), series.alphabet().label(sym)),
                        db.time_at(first + run_start),
                        db.time_at(first + run_end),
                    ));
                    run_start = run_end;
                }
            }
            rows.sort();
            windows.push(rows);
            first += stride_steps;
        }
        windows
    }

    proptest! {
        /// (a) The emitted windows tile exactly the full-window prefix
        /// of the data: per window and variable, the clipped intervals
        /// partition the window span — no gaps, no spill-over — and
        /// every extent contains its clipped interval, agreeing with
        /// the clip flags.
        #[test]
        fn windows_cover_exactly_the_full_window_prefix(
            bits in proptest::collection::vec(0u8..2, 8..64),
            win in 2usize..9,
            ov_seed in 0usize..8,
            step in 1i64..4,
        ) {
            let ov = ov_seed % win;
            let stride = win - ov;
            let syb = two_var_db(&bits, step);
            let seq_db = to_sequence_database(
                &syb,
                SplitConfig::new(win as i64 * step, ov as i64 * step),
            );
            let n = bits.len();
            let expected = if n >= win { (n - win) / stride + 1 } else { 0 };
            prop_assert_eq!(seq_db.len(), expected, "window count");
            let reg = seq_db.registry();
            for (k, seq) in seq_db.sequences().iter().enumerate() {
                let span_start = (k * stride) as i64 * step;
                let span_end = span_start + win as i64 * step;
                for var in ["K", "T"] {
                    let mut ivs: Vec<&EventInstance> = seq
                        .instances()
                        .iter()
                        .filter(|i| reg.label(i.event).starts_with(var))
                        .collect();
                    ivs.sort_by_key(|i| i.interval.start);
                    prop_assert!(!ivs.is_empty());
                    prop_assert_eq!(ivs[0].interval.start, span_start);
                    prop_assert_eq!(ivs.last().expect("non-empty").interval.end, span_end);
                    for pair in ivs.windows(2) {
                        prop_assert_eq!(pair[0].interval.end, pair[1].interval.start);
                    }
                    for i in &ivs {
                        prop_assert!(i.extent.contains(&i.interval));
                        prop_assert_eq!(i.clipped_left, i.extent.start < i.interval.start);
                        prop_assert_eq!(i.clipped_right, i.extent.end > i.interval.end);
                    }
                }
            }
        }

        /// (b) The overlap lemma, made exact: with
        /// `BoundaryPolicy::TrueExtent` and `t_ov = t_max`, every
        /// pattern of true duration ≤ t_max of the unsplit database is
        /// found in some window — and the split fabricates nothing, so
        /// the two pattern sets are equal. (Baselines compare by label:
        /// the two conversions intern events in different orders.)
        #[test]
        fn true_extent_overlap_preserves_all_short_patterns(
            bits in proptest::collection::vec(0u8..2, 16..56),
            t_max in 3i64..8,
            extra in 1i64..6,
        ) {
            let win = t_max + extra;
            let stride = extra;
            let n = bits.len() as i64;
            prop_assume!(n >= win);
            let syb = two_var_db(&bits, 1);
            // The split emits only full windows; the baseline is the
            // full-window prefix those windows tile.
            let covered = ((n - win) / stride) * stride + win;
            let unsplit = to_sequence_database(&syb, SplitConfig::new(covered, 0));
            let overlapped =
                to_sequence_database(&syb, SplitConfig::new(win, t_max));
            let cfg = MinerConfig::new(0.01, 0.01)
                .with_max_events(3)
                .with_relation(
                    RelationConfig::new(0, 1, t_max)
                        .with_boundary(BoundaryPolicy::TrueExtent),
                );
            let labels = |db: &SequenceDatabase| -> std::collections::BTreeSet<String> {
                mine_exact(db, &cfg)
                    .patterns
                    .iter()
                    .map(|p| p.pattern.display(db.registry()).to_string())
                    .collect()
            };
            let base = labels(&unsplit);
            let split = labels(&overlapped);
            for missing in base.difference(&split) {
                prop_assert!(false, "pattern lost despite overlap: {missing}");
            }
            for extra in split.difference(&base) {
                prop_assert!(false, "fabricated pattern: {extra}");
            }
        }

        /// (c) `Clip` is the default and must reproduce the historical
        /// split bit-for-bit: same windows, same clipped intervals, same
        /// labels as the pre-extent algorithm.
        #[test]
        fn clip_reproduces_the_historical_split_exactly(
            bits in proptest::collection::vec(0u8..2, 8..64),
            win in 2usize..9,
            ov_seed in 0usize..8,
            step in 1i64..4,
        ) {
            let ov = ov_seed % win;
            let syb = two_var_db(&bits, step);
            let seq_db = to_sequence_database(
                &syb,
                SplitConfig::new(win as i64 * step, ov as i64 * step),
            );
            let golden = naive_clip_split(&syb, win, win - ov);
            prop_assert_eq!(seq_db.len(), golden.len());
            let reg = seq_db.registry();
            for (seq, want) in seq_db.sequences().iter().zip(&golden) {
                let mut got: Vec<(String, i64, i64)> = seq
                    .instances()
                    .iter()
                    .map(|i| {
                        (
                            reg.label(i.event).to_owned(),
                            i.interval.start,
                            i.interval.end,
                        )
                    })
                    .collect();
                got.sort();
                prop_assert_eq!(&got, want);
            }
        }
    }
}
