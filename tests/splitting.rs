//! The overlapping splitting strategy of Section IV-B2 (Fig 3): a
//! splitting point can cut a pattern into different sequences and lose
//! it; overlapping consecutive windows by t_ov = t_max preserves every
//! pattern of duration at most t_max.

use ftpm::*;

/// Builds the Fig 3 scenario: a 4-event cascade (K, T, M, C switch on in
/// succession) placed so that a non-overlapping split at t = 40 separates
/// K,T from M,C. One sample per tick.
fn fig3_database() -> SymbolicDatabase {
    let n = 80usize;
    let mut rows = vec![vec!['0'; n]; 4];
    // The cascade straddles the boundary at 40: K [30,36), T [33,39),
    // M [41,47), C [44,50). Repeat it in every 80-tick super-period so
    // the pattern is frequent.
    let marks: [(usize, usize); 4] = [(30, 36), (33, 39), (41, 47), (44, 50)];
    for (row, (s, e)) in rows.iter_mut().zip(marks) {
        for slot in &mut row[s..e] {
            *slot = '1';
        }
    }
    let names = ["K", "T", "M", "C"];
    let mut syb = SymbolicDatabase::new(0, 1, n);
    for (name, row) in names.iter().zip(rows) {
        let labels = row
            .iter()
            .map(|&c| if c == '1' { "On" } else { "Off" });
        syb.push(SymbolicSeries::from_labels(*name, Alphabet::on_off(), labels));
    }
    syb
}

fn mine_keys(seq_db: &SequenceDatabase, events: &[&str]) -> Vec<Pattern> {
    // Sigma small enough that a single supporting sequence suffices.
    let cfg = MinerConfig::new(0.01, 0.01)
        .with_max_events(4)
        .with_relation(RelationConfig::new(0, 1, 40));
    let result = mine_exact(seq_db, &cfg);
    let reg = seq_db.registry();
    let wanted: Vec<EventId> = events
        .iter()
        .map(|n| reg.lookup_label(&format!("{n}=On")).expect("event exists"))
        .collect();
    result
        .patterns
        .iter()
        .filter(|p| p.pattern.len() == 4 && {
            let mut evs = p.pattern.events().to_vec();
            evs.sort_unstable();
            let mut want = wanted.clone();
            want.sort_unstable();
            evs == want
        })
        .map(|p| p.pattern.clone())
        .collect()
}

#[test]
fn non_overlapping_split_loses_the_cascade() {
    let syb = fig3_database();
    // Windows of 40 ticks, no overlap: the boundary at 40 cuts the
    // cascade (K,T before; M,C after) — Fig 3a.
    let seq_db = to_sequence_database(&syb, SplitConfig::new(40, 0));
    assert_eq!(seq_db.len(), 2);
    assert!(
        mine_keys(&seq_db, &["K", "T", "M", "C"]).is_empty(),
        "the 4-event pattern must be lost without overlap"
    );
}

#[test]
fn overlap_t_max_preserves_the_cascade() {
    let syb = fig3_database();
    // Same windows overlapped by t_ov = t_max = 40... window must be
    // larger than overlap; use window 60 with overlap 40 (stride 20):
    // every 40-tick span lies inside some window — Fig 3b.
    let seq_db = to_sequence_database(&syb, SplitConfig::new(60, 40));
    let found = mine_keys(&seq_db, &["K", "T", "M", "C"]);
    assert!(
        !found.is_empty(),
        "overlapping split must preserve the 4-event cascade"
    );
}

#[test]
fn overlap_preserves_all_short_patterns_generically() {
    // Generic preservation (Fig 3b): every pattern of the *underlying
    // data* with duration at most t_max must survive a split whose
    // windows overlap by t_ov = t_max. The ground truth is the unsplit
    // database mined as one sequence: an occurrence of duration ≤ 40
    // starting at s lies wholly inside window [0, 60) when s < 20 and
    // inside [20, 80) otherwise, so none of its instances is clipped and
    // every relation carries over verbatim. (Comparing against a
    // *clipped* non-overlapping split instead would be wrong: cutting a
    // run at a window boundary can fabricate short occurrences that
    // exist in no window of any other split.)
    let syb = fig3_database();
    let unsplit = to_sequence_database(&syb, SplitConfig::new(80, 0));
    let overlapped = to_sequence_database(&syb, SplitConfig::new(60, 40));
    let cfg = MinerConfig::new(0.01, 0.01)
        .with_max_events(3)
        .with_relation(RelationConfig::new(0, 1, 40));
    let base = mine_exact(&unsplit, &cfg);
    assert!(!base.is_empty(), "the unsplit data must contain patterns");
    let better = mine_exact(&overlapped, &cfg).pattern_keys();
    for p in &base.patterns {
        assert!(
            better.contains(&p.pattern),
            "pattern lost despite overlap: {:?}",
            p.pattern
        );
    }
}

#[test]
fn more_overlap_never_finds_fewer_patterns_here() {
    let syb = fig3_database();
    let cfg = MinerConfig::new(0.01, 0.01)
        .with_max_events(4)
        .with_relation(RelationConfig::new(0, 1, 40));
    let mut counts = Vec::new();
    for overlap in [0, 20, 40] {
        let seq_db = to_sequence_database(&syb, SplitConfig::new(60, overlap));
        counts.push(mine_exact(&seq_db, &cfg).len());
    }
    assert!(
        counts.windows(2).all(|w| w[0] <= w[1]),
        "pattern count should grow with overlap on the cascade data: {counts:?}"
    );
}
